// Command experiments regenerates the tables and figures of the
// paper's evaluation section (section 4). Every figure is a sweep:
// its runs expand into one list and execute on a multi-core worker
// pool (-jobs); results are byte-identical for any worker count.
//
// Examples:
//
//	experiments -list                 # show the experiment catalog
//	experiments -anchors              # paper's in-text anchors vs measured
//	experiments -table 4.1            # print the parameter settings
//	experiments -fig 4.1              # regenerate one figure
//	experiments -all                  # regenerate every figure
//	experiments -fig 4.5-NOFORCE-buf200 -csv -plot
//	experiments -all -quick -jobs 8   # short windows, eight workers
//	experiments -all -store sweep.jsonl            # persist results
//	experiments -all -store sweep.jsonl -resume    # finish a killed sweep
//	experiments -sweep spec.json -reps 5           # declarative matrix, 95% CIs
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"gemsim/internal/core"
	"gemsim/internal/node"
	"gemsim/internal/sweep"
	"gemsim/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list available experiments")
		table    = fs.String("table", "", "print a parameter table (4.1)")
		fig      = fs.String("fig", "", "run one experiment by figure id")
		anchors  = fs.Bool("anchors", false, "reproduce the paper's in-text quantitative anchors")
		all      = fs.Bool("all", false, "run every experiment")
		quick    = fs.Bool("quick", false, "short simulation windows (fast, noisier)")
		csvOut   = fs.Bool("csv", false, "additionally print CSV")
		mdOut    = fs.Bool("markdown", false, "additionally print a markdown table")
		plotOut  = fs.Bool("plot", false, "additionally print an ASCII plot")
		seed     = fs.Int64("seed", 1, "base random seed (per-run seeds derive from it)")
		verbose  = fs.Bool("v", false, "print per-run progress")
		progress = fs.Bool("progress", false, "print a heartbeat to stderr after every run: done/total, ETA, dominant bottleneck")

		jobs       = fs.Int("jobs", runtime.NumCPU(), "parallel workers (tables are identical for any value)")
		reps       = fs.Int("reps", 1, "replications per point; 2 or more add 95% confidence half-widths")
		sweepSpec  = fs.String("sweep", "", "run a declarative sweep spec (JSON file)")
		storePath  = fs.String("store", "", "persistent JSONL result store")
		resume     = fs.Bool("resume", false, "skip runs already completed in -store")
		retries    = fs.Int("retries", 0, "re-attempts after a failed run")
		runTimeout = fs.Duration("run-timeout", 0, "per-run wall-clock timeout (0 = none)")

		traceOut = fs.String("trace-out", "", "per-run event trace files (run label inserted before the extension)")
		traceFmt = fs.String("trace-format", "jsonl", "event trace encoding: jsonl or perfetto")
		tsOut    = fs.String("timeseries", "", "per-run time-series files (run label inserted before the extension)")
		sampleIv = fs.Duration("sample-interval", 500*time.Millisecond, "time-series window length")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *storePath == "" {
		return fmt.Errorf("-resume needs -store (there is nothing to resume from)")
	}

	sink := &traceSink{events: *traceOut, timeseries: *tsOut, interval: *sampleIv}
	if *traceOut != "" {
		format, ok := trace.ParseFormat(*traceFmt)
		if !ok {
			return fmt.Errorf("unknown trace format %q (want jsonl or perfetto)", *traceFmt)
		}
		sink.format = format
	}
	defer sink.closeAll()

	if *table == "4.1" {
		printTable41()
		return nil
	}
	if *table != "" {
		return fmt.Errorf("unknown table %q (only 4.1 is a parameter table)", *table)
	}
	if *anchors {
		return runAnchors(*seed, *jobs)
	}

	eng := sweep.Engine{Jobs: *jobs, Timeout: *runTimeout, Retries: *retries, Resume: *resume}
	if *storePath != "" {
		st, err := sweep.OpenStore(*storePath)
		if err != nil {
			return err
		}
		defer st.Close()
		eng.Store = st
	}
	if *verbose || *progress {
		eng.Progress = progressFunc(*verbose, *progress)
	}
	// SIGINT stops the sweep gracefully: in-flight runs finish and
	// reach the store, so `-store ... -resume` picks up where the
	// interrupted invocation left off.
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	go func() {
		if _, ok := <-sig; ok {
			close(stop)
		}
	}()
	eng.Stop = stop

	if *sweepSpec != "" {
		spec, err := sweep.LoadSpec(*sweepSpec)
		if err != nil {
			return err
		}
		if *seed != 1 {
			spec.Seed = *seed
		}
		if *reps > 1 && spec.Replications < *reps {
			spec.Replications = *reps
		}
		runs, err := spec.Runs()
		if err != nil {
			return err
		}
		return executeAndPrint(runs, eng, sink, *csvOut, *mdOut, *plotOut, *storePath)
	}

	exps, err := core.Experiments(*seed)
	if err != nil {
		return err
	}
	if *list {
		for i := range exps {
			e := &exps[i]
			fmt.Printf("%-20s %s (%d series x %d node counts; %s)\n",
				e.ID, e.Title, len(e.Series), len(e.Nodes), e.Metric)
		}
		fmt.Printf("%-20s %s\n", "failover",
			"node crash mid-run: disk-log vs GEM-log recovery (4 configs; recovery time and degradation)")
		fmt.Printf("%-20s %s\n", "adaptive",
			"skewed drifting workload: static allocation vs closed-loop load control (4 configs; throughput, RT, controller actions)")
		fmt.Printf("%-20s %s\n", "availability",
			"stochastic MTBF/MTTR crashes: offline replay vs incremental reopen (8 configs; TTFT, p99 unavailability, SLO attainment)")
		fmt.Printf("%-20s %s\n", "engines",
			"concurrency-control engines: 2PL vs MV-TO vs OCC vs HAD across contention levels (12 configs; throughput, restarts, validation work)")
		fmt.Printf("%-20s %s\n", "",
			"(the engine is also a sweep axis: \"cc\" with values 2pl, mvto, occ, had)")
		fmt.Printf("%-20s %s\n", "hyperscale",
			"kernel scaling: pooled closed-loop terminals, hundreds of nodes at constant load (2 series x 3 node counts; throughput; not part of -all)")
		return nil
	}

	opts := core.DefaultExperimentOptions()
	opts.Seed = *seed
	opts.Replications = *reps
	if *quick {
		opts.Warmup = time.Second
		opts.Measure = 5 * time.Second
	}

	var selected []core.Experiment
	switch {
	case *all:
		selected = exps
	case *fig == "failover":
		return runFailoverPreset(*seed, *quick, *verbose, *csvOut, *mdOut, sink)
	case *fig == "adaptive":
		return runAdaptivePreset(*seed, *quick, *verbose, *csvOut, *mdOut, sink)
	case *fig == "availability":
		return runAvailabilityPreset(*seed, *quick, *verbose, *csvOut, *mdOut, sink)
	case *fig == "engines":
		return runEnginesPreset(*seed, *quick, *verbose, *csvOut, *mdOut, sink)
	case *fig == "hyperscale":
		// The hyperscale preset goes through the regular sweep engine
		// (worker pool, stores, byte-identical tables for any -jobs),
		// but is not part of -all: its full-size runs are deliberately
		// enormous. -quick shrinks the complex instead of only the
		// windows, so the node axis comes from the preset itself.
		selected = append(selected, core.HyperscaleExperiment(*quick))
	case *fig != "":
		for i := range exps {
			if exps[i].ID == *fig {
				selected = append(selected, exps[i])
			}
		}
		if len(selected) == 0 {
			return fmt.Errorf("unknown experiment %q (use -list)", *fig)
		}
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -list, -table, -fig, -sweep or -all")
	}

	// One combined run list: all figures share the worker pool, so
	// small figures never serialize behind large ones.
	var runs []sweep.Run
	for i := range selected {
		runs = append(runs, sweep.ExperimentRuns(&selected[i], opts)...)
	}
	figErr := executeAndPrint(runs, eng, sink, *csvOut, *mdOut, *plotOut, *storePath)
	if figErr != nil && !isRunFailure(figErr) {
		return figErr
	}
	// -all keeps going after per-run failures (figErr carries the
	// summary) and appends the failover and adaptive presets before
	// reporting.
	if *all {
		if err := runFailoverPreset(*seed, *quick, *verbose, *csvOut, *mdOut, sink); err != nil {
			if figErr != nil {
				return fmt.Errorf("%w; failover preset: %v", figErr, err)
			}
			return fmt.Errorf("failover preset: %w", err)
		}
		if err := runAdaptivePreset(*seed, *quick, *verbose, *csvOut, *mdOut, sink); err != nil {
			if figErr != nil {
				return fmt.Errorf("%w; adaptive preset: %v", figErr, err)
			}
			return fmt.Errorf("adaptive preset: %w", err)
		}
		if err := runAvailabilityPreset(*seed, *quick, *verbose, *csvOut, *mdOut, sink); err != nil {
			if figErr != nil {
				return fmt.Errorf("%w; availability preset: %v", figErr, err)
			}
			return fmt.Errorf("availability preset: %w", err)
		}
	}
	return figErr
}

// runFailure marks errors that summarize per-run failures (as opposed
// to engine-level problems that abort the sweep).
type runFailure struct{ error }

func isRunFailure(err error) bool {
	_, ok := err.(runFailure)
	return ok
}

// executeAndPrint attaches tracing, executes the run list and prints
// the aggregated tables. Per-run failures do not abort the sweep: they
// are collected (and persisted when a store is attached), summarized on
// stderr, and turned into a non-zero exit at the end.
func executeAndPrint(runs []sweep.Run, eng sweep.Engine, sink *traceSink, csvOut, mdOut, plotOut bool, storePath string) error {
	if sink.enabled() {
		for i := range runs {
			sink.attach(&runs[i].Config, runs[i].Key)
		}
		if sink.err != nil {
			return sink.err // a filename collision must abort before anything runs
		}
	}
	results, sum, err := sweep.Execute(runs, eng)
	if err != nil {
		return err
	}
	for _, f := range sweep.Tables(runs, results) {
		fmt.Println(f.Table.Render())
		if csvOut {
			fmt.Println(f.Table.CSV())
		}
		if mdOut {
			fmt.Println(f.Table.Markdown())
		}
		if plotOut {
			fmt.Println(f.Table.Plot(12))
		}
	}
	// Timing and progress live on stderr so stdout is byte-identical
	// across -jobs values.
	fmt.Fprintf(os.Stderr, "(%s)\n", sum.String())
	if sum.Interrupted {
		hint := ""
		if storePath != "" {
			hint = fmt.Sprintf(" — finish with -resume -store %s", storePath)
		}
		return fmt.Errorf("interrupted: %d of %d runs still pending%s", sum.Pending, sum.Total, hint)
	}
	if err := sink.closeAll(); err != nil {
		return err
	}
	if sum.Failed > 0 {
		fmt.Fprintf(os.Stderr, "failed runs:\n")
		for _, f := range sum.Failures {
			fmt.Fprintf(os.Stderr, "  %s: %s\n", f.Key, firstLine(f.Err))
		}
		return runFailure{fmt.Errorf("%d of %d runs failed (see stderr for details)", sum.Failed, sum.Total)}
	}
	return nil
}

// progressFunc builds the engine progress callback: per-run result
// lines (-v), and a heartbeat (-progress) with completion count, ETA
// extrapolated from the mean wall time per finished run, and the last
// finished run's dominant bottleneck. Both write to stderr only, so
// stdout stays byte-identical across -jobs values.
func progressFunc(verbose, heartbeat bool) func(run *sweep.Run, res sweep.Result, done, total int) {
	start := time.Now()
	return func(run *sweep.Run, res sweep.Result, done, total int) {
		if verbose {
			if res.Err != "" {
				fmt.Fprintf(os.Stderr, "  [%d/%d] %s: FAILED: %s\n", done, total, run.Key, firstLine(res.Err))
			} else {
				fmt.Fprintf(os.Stderr, "  [%d/%d] %s: %v\n", done, total, run.Key, res.Report)
			}
		}
		if !heartbeat {
			return
		}
		line := fmt.Sprintf("  progress %d/%d (%.0f%%)", done, total, 100*float64(done)/float64(total))
		if elapsed := time.Since(start); done > 0 && done < total {
			eta := time.Duration(float64(elapsed) / float64(done) * float64(total-done))
			line += fmt.Sprintf("  eta %v", eta.Round(time.Second))
		}
		if rep := res.Report; rep != nil && rep.Metrics.Attribution != nil && rep.Metrics.Attribution.N > 0 {
			line += fmt.Sprintf("  bottleneck %s (%.0f%% of RT)",
				rep.Metrics.DominantBottleneck, 100*rep.Metrics.DominantShare)
		}
		fmt.Fprintln(os.Stderr, line)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// traceSink derives per-run tracing outputs from the -trace-out and
// -timeseries filename templates: the sanitized run label is inserted
// before the extension ("out.json" becomes
// "out-fig-4.1-GEM-n-4-r0.json"). Labels contain characters that are
// unsafe in filenames ("/", spaces); every rune outside [A-Za-z0-9._-]
// becomes "-", and two labels sanitizing to the same path are an error.
// Files stay open until the whole suite finishes; the first error is
// remembered and reported at the end.
type traceSink struct {
	events     string
	timeseries string
	format     trace.Format
	interval   time.Duration
	files      []*os.File
	paths      map[string]string // created path -> originating label
	err        error
}

func (s *traceSink) enabled() bool { return s.events != "" || s.timeseries != "" }

// attach opens the per-run output files and sets cfg.Tracing.
func (s *traceSink) attach(cfg *core.Config, label string) {
	if !s.enabled() {
		return
	}
	tc := &core.TraceConfig{Format: s.format, SampleInterval: s.interval}
	if s.events != "" {
		if f := s.create(s.events, label); f != nil {
			tc.Events = f
		}
	}
	if s.timeseries != "" {
		if f := s.create(s.timeseries, label); f != nil {
			tc.TimeSeries = f
		}
	}
	cfg.Tracing = tc
}

// sanitizeLabel maps every rune outside [A-Za-z0-9._-] to '-'.
func sanitizeLabel(label string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '-'
		}
	}, label)
}

func (s *traceSink) create(tpl, label string) *os.File {
	ext := filepath.Ext(tpl)
	path := strings.TrimSuffix(tpl, ext) + "-" + sanitizeLabel(label) + ext
	if prev, taken := s.paths[path]; taken {
		if s.err == nil {
			s.err = fmt.Errorf("trace output collision: run labels %q and %q both sanitize to %s", prev, label, path)
		}
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		if s.err == nil {
			s.err = err
		}
		return nil
	}
	if s.paths == nil {
		s.paths = make(map[string]string)
	}
	s.paths[path] = label
	s.files = append(s.files, f)
	return f
}

func (s *traceSink) closeAll() error {
	for _, f := range s.files {
		if err := f.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	s.files = nil
	return s.err
}

// runFailoverPreset runs the fault-injection comparison (not part of
// the paper's figure catalog): the same mid-run node crash under GEM
// and PCL, recovered from a disk-resident versus a GEM-resident log.
// Failover runs are coupled through shared recovery state, so they
// stay sequential rather than going through the sweep engine.
func runFailoverPreset(seed int64, quick, verbose, csvOut, mdOut bool, sink *traceSink) error {
	opts := core.FailoverOptions{Seed: seed}
	if sink.enabled() {
		opts.Configure = func(label string, cfg *core.Config) {
			sink.attach(cfg, "failover-"+label)
		}
	}
	if quick {
		// The window must still contain a complete disk-log recovery
		// (several simulated seconds of log scan and redo), so quick
		// mode only trims the warm-up and the post-recovery tail.
		opts.Warmup = 2 * time.Second
		opts.Measure = 20 * time.Second
	}
	if verbose {
		opts.Progress = func(label string, rep *core.Report) {
			fmt.Fprintf(os.Stderr, "  [failover] %s: %v\n", label, rep)
		}
	}
	start := time.Now()
	tbl, _, err := core.RunFailover(opts)
	if err != nil {
		return err
	}
	fmt.Println(tbl.Render())
	if csvOut {
		fmt.Println(tbl.CSV())
	}
	if mdOut {
		fmt.Println(tbl.Markdown())
	}
	fmt.Fprintf(os.Stderr, "(failover completed in %v)\n", time.Since(start).Round(time.Millisecond))
	return sink.closeAll()
}

// runAdaptivePreset runs the adaptive load control comparison: the same
// skewed, drifting debit-credit workload under static allocation versus
// the closed-loop controller, for GEM and PCL. The scenarios stay
// sequential (a four-row preset gains nothing from the worker pool and
// keeps stdout deterministic trivially).
func runAdaptivePreset(seed int64, quick, verbose, csvOut, mdOut bool, sink *traceSink) error {
	opts := core.AdaptiveOptions{Seed: seed}
	if sink.enabled() {
		opts.Configure = func(label string, cfg *core.Config) {
			sink.attach(cfg, "adaptive-"+label)
		}
	}
	if quick {
		// The window must still contain the mid-run drift step plus a
		// few controller periods on either side of it.
		opts.Warmup = 2 * time.Second
		opts.Measure = 10 * time.Second
	}
	if verbose {
		opts.Progress = func(label string, rep *core.Report) {
			fmt.Fprintf(os.Stderr, "  [adaptive] %s: %v\n", label, rep)
		}
	}
	start := time.Now()
	tbl, _, err := core.RunAdaptive(opts)
	if err != nil {
		return err
	}
	fmt.Println(tbl.Render())
	if csvOut {
		fmt.Println(tbl.CSV())
	}
	if mdOut {
		fmt.Println(tbl.Markdown())
	}
	fmt.Fprintf(os.Stderr, "(adaptive completed in %v)\n", time.Since(start).Round(time.Millisecond))
	return sink.closeAll()
}

// runAvailabilityPreset runs the availability comparison: stochastic
// MTBF/MTTR crash schedules under GEM and PCL, with the REDO replay
// either completing offline before transactions are readmitted or
// running concurrently with them (incremental reopen, on-demand page
// repair). The scenarios stay sequential (shared recovery state, and
// an eight-row preset keeps stdout deterministic trivially).
func runAvailabilityPreset(seed int64, quick, verbose, csvOut, mdOut bool, sink *traceSink) error {
	opts := core.AvailabilityOptions{Seed: seed}
	if sink.enabled() {
		opts.Configure = func(label string, cfg *core.Config) {
			sink.attach(cfg, "availability-"+label)
		}
	}
	if quick {
		// The window must still contain at least one full crash and
		// disk-log recovery cycle per regime, so quick mode only trims
		// the warm-up and part of the tail.
		opts.Warmup = 2 * time.Second
		opts.Measure = 16 * time.Second
	}
	if verbose {
		opts.Progress = func(label string, rep *core.Report) {
			fmt.Fprintf(os.Stderr, "  [availability] %s: %v\n", label, rep)
		}
	}
	start := time.Now()
	tbl, _, err := core.RunAvailability(opts)
	if err != nil {
		return err
	}
	fmt.Println(tbl.Render())
	if csvOut {
		fmt.Println(tbl.CSV())
	}
	if mdOut {
		fmt.Println(tbl.Markdown())
	}
	fmt.Fprintf(os.Stderr, "(availability completed in %v)\n", time.Since(start).Round(time.Millisecond))
	return sink.closeAll()
}

// runEnginesPreset runs the concurrency-control engine comparison (not
// part of the paper's figure catalog): the four engines against three
// contention levels of the closed-loop debit-credit workload. The runs
// stay sequential (a twelve-row preset keeps stdout deterministic
// trivially and finishes in seconds).
func runEnginesPreset(seed int64, quick, verbose, csvOut, mdOut bool, sink *traceSink) error {
	opts := core.EnginesOptions{Seed: seed}
	if sink.enabled() {
		opts.Configure = func(label string, cfg *core.Config) {
			sink.attach(cfg, "engines-"+label)
		}
	}
	if quick {
		// The window must still accumulate enough restarts per cell for
		// the crossover to be visible above run-to-run noise.
		opts.Warmup = 2 * time.Second
		opts.Measure = 8 * time.Second
	}
	if verbose {
		opts.Progress = func(label string, rep *core.Report) {
			fmt.Fprintf(os.Stderr, "  [engines] %s: %v\n", label, rep)
		}
	}
	start := time.Now()
	tbl, _, err := core.RunEngines(opts)
	if err != nil {
		return err
	}
	fmt.Println(tbl.Render())
	if csvOut {
		fmt.Println(tbl.CSV())
	}
	if mdOut {
		fmt.Println(tbl.Markdown())
	}
	fmt.Fprintf(os.Stderr, "(engines completed in %v)\n", time.Since(start).Round(time.Millisecond))
	return sink.closeAll()
}

func printTable41() {
	p := node.DefaultParams(10)
	fmt.Println("Table 4.1: Parameter settings for debit-credit workload")
	fmt.Printf("  number of nodes N      1 - 10\n")
	fmt.Printf("  arrival rate           100 TPS per node\n")
	fmt.Printf("  DB size (per 100 TPS)  BRANCH 100 (bf 1), TELLER 1000 (bf 10, clustered),\n")
	fmt.Printf("                         ACCOUNT 10,000,000 (bf 10), HISTORY (bf 20)\n")
	fmt.Printf("  path length            %.0f instructions per transaction\n", p.BOTInstr+4*p.RefInstr+p.EOTInstr)
	fmt.Printf("  lock mode              page locks for BRANCH, TELLER, ACCOUNT; no locks for HISTORY\n")
	fmt.Printf("  CPU capacity           %d processors of %.0f MIPS per node\n", p.CPUsPerNode, p.MIPSPerCPU)
	fmt.Printf("  DB buffer size         200 (1000) pages per node\n")
	fmt.Printf("  GEM                    %d server; %v per page; %v per entry\n",
		p.GEM.Servers, p.GEM.PageAccess, p.GEM.EntryAccess)
	fmt.Printf("  communication          %.0f MB/s; %.0f instr per short, %.0f per long send/receive\n",
		p.Net.BandwidthBytesPerSec/1e6, p.Net.ShortInstr, p.Net.LongInstr)
	fmt.Printf("  I/O overhead           %.0f instructions per page (GEM: %.0f for initialization)\n",
		p.IOInstr, p.GEMIOInstr)
	fmt.Printf("  avg disk access time   15 ms DB disks; 5 ms log disks\n")
	fmt.Printf("  other I/O delays       1 ms controller; 0.4 ms transfer per page\n")
}
