// Command experiments regenerates the tables and figures of the
// paper's evaluation section (section 4).
//
// Examples:
//
//	experiments -list                 # show the experiment catalog
//	experiments -anchors              # paper's in-text anchors vs measured
//	experiments -table 4.1            # print the parameter settings
//	experiments -fig 4.1              # regenerate one figure
//	experiments -all                  # regenerate every figure
//	experiments -fig 4.5-NOFORCE-buf200 -csv -plot
//	experiments -all -quick           # shorter simulation windows
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gemsim/internal/core"
	"gemsim/internal/node"
	"gemsim/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list available experiments")
		table   = fs.String("table", "", "print a parameter table (4.1)")
		fig     = fs.String("fig", "", "run one experiment by figure id")
		anchors = fs.Bool("anchors", false, "reproduce the paper's in-text quantitative anchors")
		all     = fs.Bool("all", false, "run every experiment")
		quick   = fs.Bool("quick", false, "short simulation windows (fast, noisier)")
		csvOut  = fs.Bool("csv", false, "additionally print CSV")
		mdOut   = fs.Bool("markdown", false, "additionally print a markdown table")
		plotOut = fs.Bool("plot", false, "additionally print an ASCII plot")
		seed    = fs.Int64("seed", 1, "random seed")
		verbose = fs.Bool("v", false, "print per-run progress")

		traceOut = fs.String("trace-out", "", "per-run event trace files (run label inserted before the extension)")
		traceFmt = fs.String("trace-format", "jsonl", "event trace encoding: jsonl or perfetto")
		tsOut    = fs.String("timeseries", "", "per-run time-series files (run label inserted before the extension)")
		sampleIv = fs.Duration("sample-interval", 500*time.Millisecond, "time-series window length")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sink := &traceSink{events: *traceOut, timeseries: *tsOut, interval: *sampleIv}
	if *traceOut != "" {
		format, ok := trace.ParseFormat(*traceFmt)
		if !ok {
			return fmt.Errorf("unknown trace format %q (want jsonl or perfetto)", *traceFmt)
		}
		sink.format = format
	}
	defer sink.closeAll()

	if *table == "4.1" {
		printTable41()
		return nil
	}
	if *table != "" {
		return fmt.Errorf("unknown table %q (only 4.1 is a parameter table)", *table)
	}
	if *anchors {
		return runAnchors(*seed)
	}

	exps, err := core.Experiments(*seed)
	if err != nil {
		return err
	}
	if *list {
		for i := range exps {
			e := &exps[i]
			fmt.Printf("%-20s %s (%d series x %d node counts; %s)\n",
				e.ID, e.Title, len(e.Series), len(e.Nodes), e.Metric)
		}
		fmt.Printf("%-20s %s\n", "failover",
			"node crash mid-run: disk-log vs GEM-log recovery (4 configs; recovery time and degradation)")
		return nil
	}

	opts := core.DefaultExperimentOptions()
	opts.Seed = *seed
	if *quick {
		opts.Warmup = time.Second
		opts.Measure = 5 * time.Second
	}
	if *verbose {
		opts.Progress = func(expID, series string, nodes int, rep *core.Report) {
			fmt.Fprintf(os.Stderr, "  [%s] %s n=%d: %v\n", expID, series, nodes, rep)
		}
	}
	if sink.enabled() {
		opts.Configure = func(cfg *core.Config, expID, series string, nodes int) {
			sink.attach(cfg, fmt.Sprintf("%s-%s-n%d", expID, series, nodes))
		}
	}

	var selected []core.Experiment
	switch {
	case *all:
		selected = exps
	case *fig == "failover":
		return runFailoverPreset(*seed, *quick, *verbose, *csvOut, *mdOut, sink)
	case *fig != "":
		for i := range exps {
			if exps[i].ID == *fig {
				selected = append(selected, exps[i])
			}
		}
		if len(selected) == 0 {
			return fmt.Errorf("unknown experiment %q (use -list)", *fig)
		}
	default:
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -list, -table, -fig or -all")
	}

	for i := range selected {
		start := time.Now()
		tbl, err := selected[i].Run(opts)
		if err != nil {
			return err
		}
		fmt.Println(tbl.Render())
		if *csvOut {
			fmt.Println(tbl.CSV())
		}
		if *mdOut {
			fmt.Println(tbl.Markdown())
		}
		if *plotOut {
			fmt.Println(tbl.Plot(12))
		}
		fmt.Printf("(completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if *all {
		return runFailoverPreset(*seed, *quick, *verbose, *csvOut, *mdOut, sink)
	}
	return sink.err
}

// traceSink derives per-run tracing outputs from the -trace-out and
// -timeseries filename templates: the run label is inserted before the
// extension ("out.json" becomes "out-4.1-GEM-n4.json"). Files stay
// open until the whole suite finishes; the first error is remembered
// and reported at the end.
type traceSink struct {
	events     string
	timeseries string
	format     trace.Format
	interval   time.Duration
	files      []*os.File
	err        error
}

func (s *traceSink) enabled() bool { return s.events != "" || s.timeseries != "" }

// attach opens the per-run output files and sets cfg.Tracing.
func (s *traceSink) attach(cfg *core.Config, label string) {
	if !s.enabled() {
		return
	}
	tc := &core.TraceConfig{Format: s.format, SampleInterval: s.interval}
	if s.events != "" {
		if f := s.create(s.events, label); f != nil {
			tc.Events = f
		}
	}
	if s.timeseries != "" {
		if f := s.create(s.timeseries, label); f != nil {
			tc.TimeSeries = f
		}
	}
	cfg.Tracing = tc
}

func (s *traceSink) create(tpl, label string) *os.File {
	label = strings.NewReplacer("/", "-", " ", "-").Replace(label)
	ext := filepath.Ext(tpl)
	path := strings.TrimSuffix(tpl, ext) + "-" + label + ext
	f, err := os.Create(path)
	if err != nil {
		if s.err == nil {
			s.err = err
		}
		return nil
	}
	s.files = append(s.files, f)
	return f
}

func (s *traceSink) closeAll() error {
	for _, f := range s.files {
		if err := f.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	s.files = nil
	return s.err
}

// runFailoverPreset runs the fault-injection comparison (not part of
// the paper's figure catalog): the same mid-run node crash under GEM
// and PCL, recovered from a disk-resident versus a GEM-resident log.
func runFailoverPreset(seed int64, quick, verbose, csvOut, mdOut bool, sink *traceSink) error {
	opts := core.FailoverOptions{Seed: seed}
	if sink.enabled() {
		opts.Configure = func(label string, cfg *core.Config) {
			sink.attach(cfg, "failover-"+label)
		}
	}
	if quick {
		// The window must still contain a complete disk-log recovery
		// (several simulated seconds of log scan and redo), so quick
		// mode only trims the warm-up and the post-recovery tail.
		opts.Warmup = 2 * time.Second
		opts.Measure = 20 * time.Second
	}
	if verbose {
		opts.Progress = func(label string, rep *core.Report) {
			fmt.Fprintf(os.Stderr, "  [failover] %s: %v\n", label, rep)
		}
	}
	start := time.Now()
	tbl, _, err := core.RunFailover(opts)
	if err != nil {
		return err
	}
	fmt.Println(tbl.Render())
	if csvOut {
		fmt.Println(tbl.CSV())
	}
	if mdOut {
		fmt.Println(tbl.Markdown())
	}
	fmt.Printf("(completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	return sink.err
}

func printTable41() {
	p := node.DefaultParams(10)
	fmt.Println("Table 4.1: Parameter settings for debit-credit workload")
	fmt.Printf("  number of nodes N      1 - 10\n")
	fmt.Printf("  arrival rate           100 TPS per node\n")
	fmt.Printf("  DB size (per 100 TPS)  BRANCH 100 (bf 1), TELLER 1000 (bf 10, clustered),\n")
	fmt.Printf("                         ACCOUNT 10,000,000 (bf 10), HISTORY (bf 20)\n")
	fmt.Printf("  path length            %.0f instructions per transaction\n", p.BOTInstr+4*p.RefInstr+p.EOTInstr)
	fmt.Printf("  lock mode              page locks for BRANCH, TELLER, ACCOUNT; no locks for HISTORY\n")
	fmt.Printf("  CPU capacity           %d processors of %.0f MIPS per node\n", p.CPUsPerNode, p.MIPSPerCPU)
	fmt.Printf("  DB buffer size         200 (1000) pages per node\n")
	fmt.Printf("  GEM                    %d server; %v per page; %v per entry\n",
		p.GEM.Servers, p.GEM.PageAccess, p.GEM.EntryAccess)
	fmt.Printf("  communication          %.0f MB/s; %.0f instr per short, %.0f per long send/receive\n",
		p.Net.BandwidthBytesPerSec/1e6, p.Net.ShortInstr, p.Net.LongInstr)
	fmt.Printf("  I/O overhead           %.0f instructions per page (GEM: %.0f for initialization)\n",
		p.IOInstr, p.GEMIOInstr)
	fmt.Printf("  avg disk access time   15 ms DB disks; 5 ms log disks\n")
	fmt.Printf("  other I/O delays       1 ms controller; 0.4 ms transfer per page\n")
}
