// Command traceview summarizes event traces produced by the
// simulator's -trace-out flag: per-category service time totals, the
// hottest lock pages, the slowest transactions, and a validation mode
// for CI that checks the emitted events against the Chrome trace_event
// schema. Both encodings are accepted — JSONL (one event per line) and
// the Perfetto JSON document — and are detected automatically.
//
// The -report mode turns a trace with attribution instants (cat
// "attrib", emitted by default) into a bottleneck report: resources
// ranked by attributed response-time share, a windowed dominant-
// bottleneck timeline, the station operational-law samples, and the
// lock wait-for snapshots. The -folded mode prints the aggregate
// critical path as folded stacks ("txn;res;wait <µs>") compatible
// with standard flamegraph tooling; its output is deterministic, so
// traces of the same seeded run diff byte-identically.
//
// Examples:
//
//	traceview run.jsonl
//	traceview -top 5 run.json
//	traceview -validate run.json     # exit 1 on schema violations
//	traceview -report run.jsonl      # bottleneck attribution report
//	traceview -folded run.jsonl > stacks.folded
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"gemsim/internal/attrib"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	var (
		top      = fs.Int("top", 10, "number of entries in the hotspot and slowest-transaction lists")
		validate = fs.Bool("validate", false, "validate the trace against the trace_event schema and exit")
		report   = fs.Bool("report", false, "render a bottleneck attribution report from the trace's attrib instants")
		folded   = fs.Bool("folded", false, "print the aggregate critical path as folded stacks (flamegraph format)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: traceview [-top N] [-validate | -report | -folded] <trace file, or - for stdin>")
	}

	var r io.Reader = os.Stdin
	if name := fs.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	tr, err := parse(r)
	if err != nil {
		return err
	}
	if *validate {
		if errs := tr.validate(); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "traceview: invalid:", e)
			}
			return fmt.Errorf("%d schema violation(s) in %d events (%s)", len(errs), len(tr.events), tr.format)
		}
		fmt.Printf("OK: %d events (%s) conform to the trace_event schema\n", len(tr.events), tr.format)
		return nil
	}
	if *folded {
		return tr.folded(os.Stdout)
	}
	if *report {
		return tr.report(os.Stdout, *top)
	}
	tr.summarize(os.Stdout, *top)
	return nil
}

// event is the union of the fields of both encodings. Pointer fields
// distinguish absent from zero for validation.
type event struct {
	Ph    string         `json:"ph"`
	TS    *float64       `json:"ts"`
	Dur   *float64       `json:"dur"`
	Track string         `json:"track"` // JSONL only
	PID   *int           `json:"pid"`   // Perfetto only
	TID   *int64         `json:"tid"`
	Cat   string         `json:"cat"`
	Name  string         `json:"name"`
	Arg   string         `json:"arg"`   // JSONL only
	Value *float64       `json:"value"` // JSONL counters
	Args  map[string]any `json:"args"`  // Perfetto counters/details
	S     string         `json:"s"`     // Perfetto instant scope

	line int // 1-based source line (JSONL only); 0 for Perfetto
}

type traceData struct {
	format string // "jsonl" or "perfetto"
	events []event
	procs  map[int]string // Perfetto pid -> track name
}

// parse reads a trace in either encoding. A document whose top-level
// object carries a traceEvents array is treated as Perfetto; anything
// else is parsed line by line as JSONL.
func parse(r io.Reader) (*traceData, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var doc struct {
		TraceEvents []event `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err == nil && doc.TraceEvents != nil {
		t := &traceData{format: "perfetto", events: doc.TraceEvents, procs: map[int]string{}}
		for i := range t.events {
			e := &t.events[i]
			if e.Ph == "M" && e.Name == "process_name" && e.PID != nil {
				if name, ok := e.Args["name"].(string); ok {
					t.procs[*e.PID] = name
				}
			}
		}
		return t, nil
	}
	t := &traceData{format: "jsonl"}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" {
			continue
		}
		var e event
		if err := json.Unmarshal([]byte(s), &e); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		e.line = line
		t.events = append(t.events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// track resolves the event's track name in either encoding.
func (t *traceData) track(e *event) string {
	if t.format == "jsonl" {
		return e.Track
	}
	if e.PID != nil {
		if name, ok := t.procs[*e.PID]; ok {
			return name
		}
	}
	return "?"
}

// detail resolves the free-form argument in either encoding.
func (t *traceData) detail(e *event) string {
	if t.format == "jsonl" {
		return e.Arg
	}
	if d, ok := e.Args["detail"].(string); ok {
		return d
	}
	return ""
}

// validate checks every event against the trace_event schema: known
// phase letters, required timestamps, non-negative durations, the
// per-encoding identification fields, and the closed category /
// per-category name vocabularies the downstream tooling keys on. It
// returns one message per violation (capped at 20), each prefixed
// with the source line for JSONL traces so violations are directly
// addressable.
func (t *traceData) validate() []string {
	var errs []string
	add := func(i int, format string, args ...any) {
		if len(errs) < 20 {
			errs = append(errs, t.loc(i)+": "+fmt.Sprintf(format, args...))
		}
	}
	for i := range t.events {
		e := &t.events[i]
		switch e.Ph {
		case "X", "i", "C", "M":
		default:
			add(i, "unknown phase %q", e.Ph)
			continue
		}
		if e.TS == nil {
			add(i, "%s event without ts", e.Ph)
		} else if *e.TS < 0 {
			add(i, "negative ts %v", *e.TS)
		}
		if e.Ph == "X" {
			if e.Dur == nil {
				add(i, "complete event without dur")
			} else if *e.Dur < 0 {
				add(i, "negative dur %v", *e.Dur)
			}
		}
		if e.Name == "" {
			add(i, "%s event without name", e.Ph)
		}
		if t.format == "perfetto" {
			if e.PID == nil || e.TID == nil {
				add(i, "%s event without pid/tid", e.Ph)
			}
			if e.Ph == "i" && e.S != "t" && e.S != "p" && e.S != "g" {
				add(i, "instant with invalid scope %q", e.S)
			}
			if e.Ph == "M" && e.Name == "process_name" {
				if _, ok := e.Args["name"].(string); !ok {
					add(i, "process_name metadata without args.name")
				}
			}
		} else if e.Track == "" {
			add(i, "%s event without track", e.Ph)
		}
		// Spans and instants carry one of the simulator's known
		// categories; an unknown category means the producer and this
		// tool have diverged.
		if (e.Ph == "X" || e.Ph == "i") && !knownCats[e.Cat] {
			add(i, "unknown category %q (want one of %s)", e.Cat, knownCatList)
		}
		// The recovery track has a closed vocabulary: the restart
		// decomposition and downstream tooling key on these names.
		if e.Cat == "recovery" {
			switch e.Ph {
			case "X":
				if !recoverySpanNames[e.Name] {
					add(i, "unknown recovery span %q (want detect, lock-recovery, log-scan, redo, replay, reopen or page-repair)", e.Name)
				}
			case "i":
				if e.Name != "recovered" {
					add(i, "unknown recovery instant %q (want recovered)", e.Name)
				}
			}
		}
		if e.Cat == "fault" && e.Ph == "i" && e.Name != "crash" && e.Name != "repair" {
			add(i, "unknown fault instant %q (want crash or repair)", e.Name)
		}
		// The cc track (optimistic concurrency-control engines) has a
		// closed vocabulary: costed validation spans, remote mediation
		// round trips, and abort instants carrying the conflict reason.
		if e.Cat == "cc" {
			switch e.Ph {
			case "X":
				switch e.Name {
				case "cc-validate":
					if d := t.detail(e); d != "ok" && d != "conflict" {
						add(i, "cc-validate span with arg %q (want ok or conflict)", d)
					}
				case "cc-remote":
				default:
					add(i, "unknown cc span %q (want cc-validate or cc-remote)", e.Name)
				}
			case "i":
				if e.Name != "cc-abort" {
					add(i, "unknown cc instant %q (want cc-abort)", e.Name)
				} else if d := t.detail(e); !ccAbortReasons[d] {
					add(i, "cc-abort instant with reason %q (want validation, late-write or ww-conflict)", d)
				}
			}
		}
		// Attribution events are instants with a closed name
		// vocabulary and machine-readable arguments; -report and
		// -folded key on both.
		if e.Cat == "attrib" {
			if e.Ph != "i" {
				add(i, "attrib event with phase %q (attrib events are instants)", e.Ph)
				continue
			}
			switch e.Name {
			case "txnpath":
				if _, err := attrib.DecodeArg(t.detail(e)); err != nil {
					add(i, "txnpath instant with undecodable arg: %v", err)
				}
			case "station":
				if _, err := parseStationArg(t.detail(e)); err != nil {
					add(i, "station instant with undecodable arg: %v", err)
				}
			case "waitfor":
				if !strings.HasPrefix(t.detail(e), "edges=") {
					add(i, "waitfor instant arg %q does not start with edges=", t.detail(e))
				}
			default:
				add(i, "unknown attrib instant %q (want txnpath, station or waitfor)", e.Name)
			}
		}
	}
	return errs
}

// loc names an event for error messages: the source line for JSONL
// traces, the event index for Perfetto documents.
func (t *traceData) loc(i int) string {
	if e := &t.events[i]; e.line > 0 {
		return fmt.Sprintf("line %d", e.line)
	}
	return fmt.Sprintf("event %d", i)
}

// knownCats is the complete span/instant category vocabulary the
// simulator emits. knownCatList spells it out for error messages.
var knownCats = map[string]bool{
	"attrib":   true,
	"cc":       true,
	"control":  true,
	"cpu":      true,
	"fault":    true,
	"gem":      true,
	"io":       true,
	"lock":     true,
	"net":      true,
	"recovery": true,
	"txn":      true,
}

var knownCatList = func() string {
	names := make([]string, 0, len(knownCats))
	for c := range knownCats {
		names = append(names, c)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}()

// ccAbortReasons is the closed conflict-reason vocabulary of cc-abort
// instants (and of engine-initiated txn abort instants).
var ccAbortReasons = map[string]bool{
	"validation":  true,
	"late-write":  true,
	"ww-conflict": true,
}

// recoverySpanNames is the complete recovery-phase vocabulary: the
// serial path emits detect/lock-recovery/log-scan/redo, the parallel
// replay engine emits per-worker log-scan/replay spans, and
// incremental reopen adds reopen plus per-page page-repair spans.
var recoverySpanNames = map[string]bool{
	"detect":        true,
	"lock-recovery": true,
	"log-scan":      true,
	"redo":          true,
	"replay":        true,
	"reopen":        true,
	"page-repair":   true,
}

// keyTotal accumulates count and total duration per grouping key.
type keyTotal struct {
	key   string
	count int
	total float64 // microseconds
}

func topTotals(m map[string]*keyTotal, n int) []*keyTotal {
	out := make([]*keyTotal, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].total != out[j].total {
			return out[i].total > out[j].total
		}
		return out[i].key < out[j].key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

func (t *traceData) summarize(w io.Writer, top int) {
	var (
		spans, instants, counters int
		tsMax                     float64
		byCat                     = map[string]*keyTotal{}
		lockPages                 = map[string]*keyTotal{}
		recPhases                 = map[string]*keyTotal{}
		txns                      []*event
	)
	acc := func(m map[string]*keyTotal, key string, dur float64) {
		kt := m[key]
		if kt == nil {
			kt = &keyTotal{key: key}
			m[key] = kt
		}
		kt.count++
		kt.total += dur
	}
	for i := range t.events {
		e := &t.events[i]
		if e.TS != nil {
			end := *e.TS
			if e.Dur != nil {
				end += *e.Dur
			}
			if end > tsMax {
				tsMax = end
			}
		}
		switch e.Ph {
		case "X":
			spans++
			dur := 0.0
			if e.Dur != nil {
				dur = *e.Dur
			}
			cat := e.Cat
			if cat == "" {
				cat = "?"
			}
			if cat == "txn" {
				txns = append(txns, e)
			} else {
				acc(byCat, cat+"/"+e.Name, dur)
			}
			if cat == "lock" {
				if page := t.detail(e); page != "" {
					acc(lockPages, e.Name+" "+page, dur)
				}
			}
			if cat == "recovery" {
				acc(recPhases, e.Name, dur)
			}
		case "i":
			instants++
			acc(byCat, "instant "+e.Cat+"/"+e.Name, 0)
		case "C":
			counters++
		}
	}

	fmt.Fprintf(w, "trace: %s, %d events (%d spans, %d instants, %d counter samples), %.3f s simulated\n",
		t.format, len(t.events), spans, instants, counters, tsMax/1e6)

	fmt.Fprintf(w, "\nservice totals by category:\n")
	for _, kt := range topTotals(byCat, 0) {
		fmt.Fprintf(w, "  %-28s %8d  %12.3f ms\n", kt.key, kt.count, kt.total/1e3)
	}

	if len(recPhases) > 0 {
		var recTotal float64
		for _, kt := range recPhases {
			recTotal += kt.total
		}
		fmt.Fprintf(w, "\nrestart decomposition (recovery phases):\n")
		for _, kt := range topTotals(recPhases, 0) {
			share := 0.0
			if recTotal > 0 {
				share = 100 * kt.total / recTotal
			}
			fmt.Fprintf(w, "  %-28s %8d  %12.3f ms  %5.1f%%\n", kt.key, kt.count, kt.total/1e3, share)
		}
	}

	if len(lockPages) > 0 {
		fmt.Fprintf(w, "\ntop lock hotspots (by time):\n")
		for _, kt := range topTotals(lockPages, top) {
			fmt.Fprintf(w, "  %-28s %8d  %12.3f ms\n", kt.key, kt.count, kt.total/1e3)
		}
	}

	if len(txns) > 0 {
		sort.Slice(txns, func(i, j int) bool {
			di, dj := 0.0, 0.0
			if txns[i].Dur != nil {
				di = *txns[i].Dur
			}
			if txns[j].Dur != nil {
				dj = *txns[j].Dur
			}
			if di != dj {
				return di > dj
			}
			return *txns[i].TS < *txns[j].TS
		})
		n := len(txns)
		var total float64
		for _, e := range txns {
			if e.Dur != nil {
				total += *e.Dur
			}
		}
		fmt.Fprintf(w, "\ntransactions: %d complete, mean %.3f ms\n", n, total/float64(n)/1e3)
		if top < n {
			n = top
		}
		fmt.Fprintf(w, "slowest transactions:\n")
		for _, e := range txns[:n] {
			tid := int64(0)
			if e.TID != nil {
				tid = *e.TID
			}
			fmt.Fprintf(w, "  txn %-8d %-10s start %10.3f ms  dur %10.3f ms  %s\n",
				tid, t.track(e), *e.TS/1e3, *e.Dur/1e3, t.detail(e))
		}
	}
}

// stationSample is one decoded "station" attrib instant: a windowed
// operational-law sample of one queueing station (attrib.Laws encoded
// by its EncodeArg).
type stationSample struct {
	station  string
	servers  int
	tput     float64
	util     float64
	wqMicros float64
	lq       float64
	little   float64
	utilRes  float64
}

// parseStationArg decodes the fixed "station=...;servers=...;..."
// field list of a station instant, rejecting unknown or missing
// fields so schema drift is caught by -validate.
func parseStationArg(s string) (stationSample, error) {
	var out stationSample
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ";") {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return out, fmt.Errorf("entry %q has no '='", part)
		}
		seen[key] = true
		var err error
		switch key {
		case "station":
			out.station = val
		case "servers":
			out.servers, err = strconv.Atoi(val)
		case "tput":
			out.tput, err = strconv.ParseFloat(val, 64)
		case "util":
			out.util, err = strconv.ParseFloat(val, 64)
		case "wq":
			out.wqMicros, err = strconv.ParseFloat(val, 64)
		case "lq":
			out.lq, err = strconv.ParseFloat(val, 64)
		case "little":
			out.little, err = strconv.ParseFloat(val, 64)
		case "utilresid":
			out.utilRes, err = strconv.ParseFloat(val, 64)
		default:
			return out, fmt.Errorf("unknown field %q", key)
		}
		if err != nil {
			return out, fmt.Errorf("field %q has bad value %q", key, val)
		}
	}
	for _, req := range []string{"station", "servers", "tput", "util", "wq", "lq", "little", "utilresid"} {
		if !seen[req] {
			return out, fmt.Errorf("missing field %q", req)
		}
	}
	return out, nil
}

// pathSample is one decoded txnpath instant: a committed transaction's
// critical-path vector, with the response time joined from the
// matching txn span (same track and tid).
type pathSample struct {
	ts  float64 // microseconds
	vec attrib.Vector
	rt  time.Duration
}

// collectAttrib extracts and joins the attribution events of a trace:
// txnpath vectors (joined against txn-span response times), station
// law samples, and wait-for snapshots. unmatched counts txnpath
// instants without a txn span — their vectors still contribute to
// folded stacks but carry no residual.
func (t *traceData) collectAttrib() (paths []pathSample, stations []stationSample, waitfors []string, unmatched int, err error) {
	rt := map[string]float64{} // track|tid -> txn span dur (µs)
	for i := range t.events {
		e := &t.events[i]
		if e.Ph == "X" && e.Cat == "txn" && e.Dur != nil && e.TID != nil {
			rt[fmt.Sprintf("%s|%d", t.track(e), *e.TID)] = *e.Dur
		}
	}
	for i := range t.events {
		e := &t.events[i]
		if e.Ph != "i" || e.Cat != "attrib" {
			continue
		}
		switch e.Name {
		case "txnpath":
			v, derr := attrib.DecodeArg(t.detail(e))
			if derr != nil {
				return nil, nil, nil, 0, fmt.Errorf("%s: %v", t.loc(i), derr)
			}
			p := pathSample{vec: v}
			if e.TS != nil {
				p.ts = *e.TS
			}
			if e.TID != nil {
				if dur, ok := rt[fmt.Sprintf("%s|%d", t.track(e), *e.TID)]; ok {
					p.rt = time.Duration(dur * float64(time.Microsecond))
				}
			}
			if p.rt == 0 {
				unmatched++
				p.rt = v.Sum()
			}
			paths = append(paths, p)
		case "station":
			s, derr := parseStationArg(t.detail(e))
			if derr != nil {
				return nil, nil, nil, 0, fmt.Errorf("%s: %v", t.loc(i), derr)
			}
			stations = append(stations, s)
		case "waitfor":
			waitfors = append(waitfors, t.detail(e))
		}
	}
	return paths, stations, waitfors, unmatched, nil
}

// report renders the bottleneck attribution report: resources ranked
// by their share of mean response time (shares sum to 100% by
// construction — the residual not attributed to any instrumented
// resource is the "other" row), a windowed dominant-bottleneck
// timeline, aggregated station-law samples, and the lock wait-for
// summary.
func (t *traceData) report(w io.Writer, top int) error {
	paths, stations, waitfors, unmatched, err := t.collectAttrib()
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no attrib txnpath instants in the trace (run the simulator without attribution disabled and with -trace-out)")
	}

	var bd attrib.Breakdown
	for i := range paths {
		bd.Observe(&paths[i].vec, paths[i].rt)
	}
	meanRT := bd.MeanRT()
	fmt.Fprintf(w, "bottleneck report: %d transactions attributed, mean RT %.3f ms\n",
		bd.N, float64(meanRT)/float64(time.Millisecond))
	if unmatched > 0 {
		fmt.Fprintf(w, "  (%d txnpath instants without a matching txn span: residual unknown, vector sum used as RT)\n", unmatched)
	}

	type row struct {
		res   attrib.Res
		share float64
	}
	var rows []row
	for r := attrib.Res(0); r < attrib.NumRes; r++ {
		rows = append(rows, row{r, bd.Share(r)})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].share > rows[j].share })
	fmt.Fprintf(w, "\nresources by attributed share of response time:\n")
	fmt.Fprintf(w, "  %-8s %8s %12s %12s\n", "resource", "share", "wait ms", "service ms")
	var shareSum float64
	for _, r := range rows {
		wait, svc := bd.Mean(r.res)
		if wait == 0 && svc == 0 {
			continue
		}
		shareSum += r.share
		fmt.Fprintf(w, "  %-8s %7.1f%% %12.3f %12.3f\n", r.res,
			100*r.share, float64(wait)/float64(time.Millisecond), float64(svc)/float64(time.Millisecond))
	}
	fmt.Fprintf(w, "  %-8s %7.1f%% of measured mean RT\n", "total", 100*shareSum)

	t.reportTimeline(w, paths)
	t.reportStations(w, stations)
	t.reportWaitFor(w, waitfors, top)
	return nil
}

// reportTimeline buckets the txnpath samples into fixed windows and
// prints which resource dominated each window's attributed time.
func (t *traceData) reportTimeline(w io.Writer, paths []pathSample) {
	var tsMin, tsMax float64 = math.Inf(1), math.Inf(-1)
	for _, p := range paths {
		if p.ts < tsMin {
			tsMin = p.ts
		}
		if p.ts > tsMax {
			tsMax = p.ts
		}
	}
	const buckets = 10
	width := (tsMax - tsMin) / buckets
	if width <= 0 {
		return
	}
	type window struct {
		txns  int
		total [attrib.NumRes]time.Duration
		sum   time.Duration
	}
	wins := make([]window, buckets)
	for _, p := range paths {
		b := int((p.ts - tsMin) / width)
		if b >= buckets {
			b = buckets - 1
		}
		wins[b].txns++
		var vecSum time.Duration
		for r := attrib.Res(0); r < attrib.NumRes; r++ {
			d := p.vec.Wait[r] + p.vec.Svc[r]
			wins[b].total[r] += d
			vecSum += d
		}
		// The unattributed residual belongs to "other", exactly as in
		// Breakdown.Observe, so windowed shares stay consistent with
		// the whole-run ranking.
		if resid := p.rt - vecSum; resid > 0 {
			wins[b].total[attrib.ResOther] += resid
			vecSum += resid
		}
		wins[b].sum += vecSum
	}
	fmt.Fprintf(w, "\nbottleneck timeline (%d windows of %.1f ms):\n", buckets, width/1e3)
	for i, win := range wins {
		t0 := (tsMin + float64(i)*width) / 1e3
		if win.txns == 0 {
			fmt.Fprintf(w, "  %10.1f ms  %4d txns  -\n", t0, 0)
			continue
		}
		dom, domT := attrib.ResOther, time.Duration(0)
		for r := attrib.Res(0); r < attrib.NumRes; r++ {
			if win.total[r] > domT {
				dom, domT = r, win.total[r]
			}
		}
		share := 0.0
		if win.sum > 0 {
			share = 100 * float64(domT) / float64(win.sum)
		}
		fmt.Fprintf(w, "  %10.1f ms  %4d txns  %-8s %5.1f%%\n", t0, win.txns, dom, share)
	}
}

// reportStations aggregates the windowed station-law samples per
// station: mean utilization and throughput over the run, and the worst
// observed residual of each law.
func (t *traceData) reportStations(w io.Writer, stations []stationSample) {
	if len(stations) == 0 {
		return
	}
	type agg struct {
		name                 string
		servers, n           int
		tput, util           float64
		maxLittle, maxUtilRe float64
	}
	byName := map[string]*agg{}
	for _, s := range stations {
		a := byName[s.station]
		if a == nil {
			a = &agg{name: s.station, servers: s.servers}
			byName[s.station] = a
		}
		a.n++
		a.tput += s.tput
		a.util += s.util
		if s.little > a.maxLittle {
			a.maxLittle = s.little
		}
		if s.utilRes > a.maxUtilRe {
			a.maxUtilRe = s.utilRes
		}
	}
	aggs := make([]*agg, 0, len(byName))
	for _, a := range byName {
		aggs = append(aggs, a)
	}
	sort.Slice(aggs, func(i, j int) bool {
		if aggs[i].util != aggs[j].util {
			return aggs[i].util > aggs[j].util
		}
		return aggs[i].name < aggs[j].name
	})
	fmt.Fprintf(w, "\nstation law samples (%d windows):\n", len(stations))
	fmt.Fprintf(w, "  %-14s %4s %10s %8s %12s %12s\n", "station", "srv", "tput/s", "util", "max little", "max utilres")
	for _, a := range aggs {
		fmt.Fprintf(w, "  %-14s %4d %10.1f %7.1f%% %11.1f%% %11.1f%%\n",
			a.name, a.servers, a.tput/float64(a.n), 100*a.util/float64(a.n),
			100*a.maxLittle, 100*a.maxUtilRe)
	}
}

// reportWaitFor summarizes the wait-for graph snapshots: how often the
// graph was non-empty, its peak, and the peak snapshot's detail.
func (t *traceData) reportWaitFor(w io.Writer, waitfors []string, top int) {
	if len(waitfors) == 0 {
		return
	}
	intField := func(s, key string) int {
		for _, part := range strings.Split(s, ";") {
			if v, ok := strings.CutPrefix(part, key+"="); ok {
				n, _ := strconv.Atoi(v)
				return n
			}
		}
		return 0
	}
	nonEmpty, convoys, peak, peakEdges := 0, 0, "", -1
	for _, s := range waitfors {
		edges := intField(s, "edges")
		if edges > 0 {
			nonEmpty++
		}
		if strings.Contains(s, ";convoy=true") {
			convoys++
		}
		if edges > peakEdges {
			peakEdges, peak = edges, s
		}
	}
	fmt.Fprintf(w, "\nlock wait-for graph: %d/%d snapshots with waiters, %d with a convoy\n",
		nonEmpty, len(waitfors), convoys)
	if peakEdges > 0 {
		fmt.Fprintf(w, "  peak snapshot: %s\n", peak)
	}
}

// folded prints the aggregate critical path as folded stacks, one
// "txn;<resource>;<wait|service> <µs>" line per nonzero component.
// Resource order is fixed and values are integral microsecond sums,
// so the output is byte-identical for traces of the same seeded run
// regardless of how the trace was produced (-jobs level, encoding).
func (t *traceData) folded(w io.Writer) error {
	paths, _, _, _, err := t.collectAttrib()
	if err != nil {
		return err
	}
	var total attrib.Vector
	for i := range paths {
		p := &paths[i]
		var vecSum time.Duration
		for r := attrib.Res(0); r < attrib.NumRes; r++ {
			total.Wait[r] += p.vec.Wait[r]
			total.Svc[r] += p.vec.Svc[r]
			vecSum += p.vec.Wait[r] + p.vec.Svc[r]
		}
		if resid := p.rt - vecSum; resid > 0 {
			total.Wait[attrib.ResOther] += resid
		}
	}
	for r := attrib.Res(0); r < attrib.NumRes; r++ {
		if us := total.Wait[r].Microseconds(); us > 0 {
			fmt.Fprintf(w, "txn;%s;wait %d\n", r, us)
		}
		if us := total.Svc[r].Microseconds(); us > 0 {
			fmt.Fprintf(w, "txn;%s;service %d\n", r, us)
		}
	}
	return nil
}
