// Command traceview summarizes event traces produced by the
// simulator's -trace-out flag: per-category service time totals, the
// hottest lock pages, the slowest transactions, and a validation mode
// for CI that checks the emitted events against the Chrome trace_event
// schema. Both encodings are accepted — JSONL (one event per line) and
// the Perfetto JSON document — and are detected automatically.
//
// Examples:
//
//	traceview run.jsonl
//	traceview -top 5 run.json
//	traceview -validate run.json     # exit 1 on schema violations
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	var (
		top      = fs.Int("top", 10, "number of entries in the hotspot and slowest-transaction lists")
		validate = fs.Bool("validate", false, "validate the trace against the trace_event schema and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: traceview [-top N] [-validate] <trace file, or - for stdin>")
	}

	var r io.Reader = os.Stdin
	if name := fs.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	tr, err := parse(r)
	if err != nil {
		return err
	}
	if *validate {
		if errs := tr.validate(); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintln(os.Stderr, "traceview: invalid:", e)
			}
			return fmt.Errorf("%d schema violation(s) in %d events (%s)", len(errs), len(tr.events), tr.format)
		}
		fmt.Printf("OK: %d events (%s) conform to the trace_event schema\n", len(tr.events), tr.format)
		return nil
	}
	tr.summarize(os.Stdout, *top)
	return nil
}

// event is the union of the fields of both encodings. Pointer fields
// distinguish absent from zero for validation.
type event struct {
	Ph    string         `json:"ph"`
	TS    *float64       `json:"ts"`
	Dur   *float64       `json:"dur"`
	Track string         `json:"track"` // JSONL only
	PID   *int           `json:"pid"`   // Perfetto only
	TID   *int64         `json:"tid"`
	Cat   string         `json:"cat"`
	Name  string         `json:"name"`
	Arg   string         `json:"arg"`   // JSONL only
	Value *float64       `json:"value"` // JSONL counters
	Args  map[string]any `json:"args"`  // Perfetto counters/details
	S     string         `json:"s"`     // Perfetto instant scope
}

type traceData struct {
	format string // "jsonl" or "perfetto"
	events []event
	procs  map[int]string // Perfetto pid -> track name
}

// parse reads a trace in either encoding. A document whose top-level
// object carries a traceEvents array is treated as Perfetto; anything
// else is parsed line by line as JSONL.
func parse(r io.Reader) (*traceData, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var doc struct {
		TraceEvents []event `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err == nil && doc.TraceEvents != nil {
		t := &traceData{format: "perfetto", events: doc.TraceEvents, procs: map[int]string{}}
		for i := range t.events {
			e := &t.events[i]
			if e.Ph == "M" && e.Name == "process_name" && e.PID != nil {
				if name, ok := e.Args["name"].(string); ok {
					t.procs[*e.PID] = name
				}
			}
		}
		return t, nil
	}
	t := &traceData{format: "jsonl"}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" {
			continue
		}
		var e event
		if err := json.Unmarshal([]byte(s), &e); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		t.events = append(t.events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// track resolves the event's track name in either encoding.
func (t *traceData) track(e *event) string {
	if t.format == "jsonl" {
		return e.Track
	}
	if e.PID != nil {
		if name, ok := t.procs[*e.PID]; ok {
			return name
		}
	}
	return "?"
}

// detail resolves the free-form argument in either encoding.
func (t *traceData) detail(e *event) string {
	if t.format == "jsonl" {
		return e.Arg
	}
	if d, ok := e.Args["detail"].(string); ok {
		return d
	}
	return ""
}

// validate checks every event against the trace_event schema: known
// phase letters, required timestamps, non-negative durations, and the
// per-encoding identification fields. It returns one message per
// violation (capped at 20).
func (t *traceData) validate() []string {
	var errs []string
	add := func(i int, format string, args ...any) {
		if len(errs) < 20 {
			errs = append(errs, fmt.Sprintf("event %d: ", i)+fmt.Sprintf(format, args...))
		}
	}
	for i := range t.events {
		e := &t.events[i]
		switch e.Ph {
		case "X", "i", "C", "M":
		default:
			add(i, "unknown phase %q", e.Ph)
			continue
		}
		if e.TS == nil {
			add(i, "%s event without ts", e.Ph)
		} else if *e.TS < 0 {
			add(i, "negative ts %v", *e.TS)
		}
		if e.Ph == "X" {
			if e.Dur == nil {
				add(i, "complete event without dur")
			} else if *e.Dur < 0 {
				add(i, "negative dur %v", *e.Dur)
			}
		}
		if e.Name == "" {
			add(i, "%s event without name", e.Ph)
		}
		if t.format == "perfetto" {
			if e.PID == nil || e.TID == nil {
				add(i, "%s event without pid/tid", e.Ph)
			}
			if e.Ph == "i" && e.S != "t" && e.S != "p" && e.S != "g" {
				add(i, "instant with invalid scope %q", e.S)
			}
			if e.Ph == "M" && e.Name == "process_name" {
				if _, ok := e.Args["name"].(string); !ok {
					add(i, "process_name metadata without args.name")
				}
			}
		} else if e.Track == "" {
			add(i, "%s event without track", e.Ph)
		}
		// The recovery track has a closed vocabulary: the restart
		// decomposition and downstream tooling key on these names.
		if e.Cat == "recovery" {
			switch e.Ph {
			case "X":
				if !recoverySpanNames[e.Name] {
					add(i, "unknown recovery span %q (want detect, lock-recovery, log-scan, redo, replay, reopen or page-repair)", e.Name)
				}
			case "i":
				if e.Name != "recovered" {
					add(i, "unknown recovery instant %q (want recovered)", e.Name)
				}
			}
		}
		if e.Cat == "fault" && e.Ph == "i" && e.Name != "crash" && e.Name != "repair" {
			add(i, "unknown fault instant %q (want crash or repair)", e.Name)
		}
	}
	return errs
}

// recoverySpanNames is the complete recovery-phase vocabulary: the
// serial path emits detect/lock-recovery/log-scan/redo, the parallel
// replay engine emits per-worker log-scan/replay spans, and
// incremental reopen adds reopen plus per-page page-repair spans.
var recoverySpanNames = map[string]bool{
	"detect":        true,
	"lock-recovery": true,
	"log-scan":      true,
	"redo":          true,
	"replay":        true,
	"reopen":        true,
	"page-repair":   true,
}

// keyTotal accumulates count and total duration per grouping key.
type keyTotal struct {
	key   string
	count int
	total float64 // microseconds
}

func topTotals(m map[string]*keyTotal, n int) []*keyTotal {
	out := make([]*keyTotal, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].total != out[j].total {
			return out[i].total > out[j].total
		}
		return out[i].key < out[j].key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

func (t *traceData) summarize(w io.Writer, top int) {
	var (
		spans, instants, counters int
		tsMax                     float64
		byCat                     = map[string]*keyTotal{}
		lockPages                 = map[string]*keyTotal{}
		recPhases                 = map[string]*keyTotal{}
		txns                      []*event
	)
	acc := func(m map[string]*keyTotal, key string, dur float64) {
		kt := m[key]
		if kt == nil {
			kt = &keyTotal{key: key}
			m[key] = kt
		}
		kt.count++
		kt.total += dur
	}
	for i := range t.events {
		e := &t.events[i]
		if e.TS != nil {
			end := *e.TS
			if e.Dur != nil {
				end += *e.Dur
			}
			if end > tsMax {
				tsMax = end
			}
		}
		switch e.Ph {
		case "X":
			spans++
			dur := 0.0
			if e.Dur != nil {
				dur = *e.Dur
			}
			cat := e.Cat
			if cat == "" {
				cat = "?"
			}
			if cat == "txn" {
				txns = append(txns, e)
			} else {
				acc(byCat, cat+"/"+e.Name, dur)
			}
			if cat == "lock" {
				if page := t.detail(e); page != "" {
					acc(lockPages, e.Name+" "+page, dur)
				}
			}
			if cat == "recovery" {
				acc(recPhases, e.Name, dur)
			}
		case "i":
			instants++
			acc(byCat, "instant "+e.Cat+"/"+e.Name, 0)
		case "C":
			counters++
		}
	}

	fmt.Fprintf(w, "trace: %s, %d events (%d spans, %d instants, %d counter samples), %.3f s simulated\n",
		t.format, len(t.events), spans, instants, counters, tsMax/1e6)

	fmt.Fprintf(w, "\nservice totals by category:\n")
	for _, kt := range topTotals(byCat, 0) {
		fmt.Fprintf(w, "  %-28s %8d  %12.3f ms\n", kt.key, kt.count, kt.total/1e3)
	}

	if len(recPhases) > 0 {
		var recTotal float64
		for _, kt := range recPhases {
			recTotal += kt.total
		}
		fmt.Fprintf(w, "\nrestart decomposition (recovery phases):\n")
		for _, kt := range topTotals(recPhases, 0) {
			share := 0.0
			if recTotal > 0 {
				share = 100 * kt.total / recTotal
			}
			fmt.Fprintf(w, "  %-28s %8d  %12.3f ms  %5.1f%%\n", kt.key, kt.count, kt.total/1e3, share)
		}
	}

	if len(lockPages) > 0 {
		fmt.Fprintf(w, "\ntop lock hotspots (by time):\n")
		for _, kt := range topTotals(lockPages, top) {
			fmt.Fprintf(w, "  %-28s %8d  %12.3f ms\n", kt.key, kt.count, kt.total/1e3)
		}
	}

	if len(txns) > 0 {
		sort.Slice(txns, func(i, j int) bool {
			di, dj := 0.0, 0.0
			if txns[i].Dur != nil {
				di = *txns[i].Dur
			}
			if txns[j].Dur != nil {
				dj = *txns[j].Dur
			}
			if di != dj {
				return di > dj
			}
			return *txns[i].TS < *txns[j].TS
		})
		n := len(txns)
		var total float64
		for _, e := range txns {
			if e.Dur != nil {
				total += *e.Dur
			}
		}
		fmt.Fprintf(w, "\ntransactions: %d complete, mean %.3f ms\n", n, total/float64(n)/1e3)
		if top < n {
			n = top
		}
		fmt.Fprintf(w, "slowest transactions:\n")
		for _, e := range txns[:n] {
			tid := int64(0)
			if e.TID != nil {
				tid = *e.TID
			}
			fmt.Fprintf(w, "  txn %-8d %-10s start %10.3f ms  dur %10.3f ms  %s\n",
				tid, t.track(e), *e.TS/1e3, *e.Dur/1e3, t.detail(e))
		}
	}
}
