package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gemsim/internal/core"
	"gemsim/internal/fault"
	"gemsim/internal/recovery"
)

// goldenTrace is the JSONL event trace checked into the core package's
// golden-output tests; it doubles here as a known-valid input.
const goldenTrace = "../../internal/core/testdata/tiny_trace.jsonl"

func TestValidateGoldenTrace(t *testing.T) {
	if err := run([]string{"-validate", goldenTrace}); err != nil {
		t.Fatalf("golden trace failed validation: %v", err)
	}
}

func TestSummarizeGoldenTrace(t *testing.T) {
	if err := run([]string{"-top", "3", goldenTrace}); err != nil {
		t.Fatalf("summarize failed on golden trace: %v", err)
	}
}

func TestValidateRejectsSchemaViolations(t *testing.T) {
	// One unknown phase, one span without ts, one span without name,
	// one span with a category outside the emitted vocabulary: four
	// violations the validator must report, each with its line number.
	bad := strings.Join([]string{
		`{"ph":"Z","ts":1,"name":"x","track":"t"}`,
		`{"ph":"X","dur":5,"name":"x","cat":"txn","track":"t"}`,
		`{"ph":"X","ts":1,"dur":5,"cat":"txn","track":"t"}`,
		`{"ph":"X","ts":1,"dur":5,"name":"x","cat":"bogus","track":"t"}`,
	}, "\n")
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-validate", path})
	if err == nil {
		t.Fatal("validate accepted a trace with schema violations")
	}
	if !strings.Contains(err.Error(), "4 schema violation(s)") {
		t.Fatalf("error %q, want 4 schema violations reported", err)
	}
}

func TestParseErrorOnMalformedJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.jsonl")
	if err := os.WriteFile(path, []byte("{\"ph\":\"X\"\nnot json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-validate", path})
	if err == nil {
		t.Fatal("parse accepted malformed JSON")
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("error %q, want the offending line number", err)
	}
}

func TestMissingFileIsAnError(t *testing.T) {
	if err := run([]string{filepath.Join(t.TempDir(), "nope.jsonl")}); err == nil {
		t.Fatal("run succeeded on a missing file")
	}
}

// TestValidateRecoveryTrace runs a small crash/recovery simulation
// with incremental reopen and checks that the recovery track (phase
// spans, crash/repair/recovered instants, per-worker replay spans,
// on-demand page repairs) conforms to the schema, and that the
// validator rejects names outside the recovery vocabulary.
func TestValidateRecoveryTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "recovery.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	crashes := []fault.NodeCrash{{Node: 1, At: 2 * time.Second, Repair: 1500 * time.Millisecond}}
	cfg := core.AvailabilityConfig(core.CouplingGEM, recovery.ReopenIncremental, crashes, core.AvailabilityOptions{
		Nodes:   2,
		Warmup:  time.Second,
		Measure: 11 * time.Second,
	})
	cfg.Tracing = &core.TraceConfig{Events: f}
	if _, err := core.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-validate", path}); err != nil {
		t.Fatalf("recovery trace failed schema validation: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trace := string(data)
	for _, want := range []string{
		`"cat":"fault","name":"crash"`, `"cat":"fault","name":"repair"`,
		`"cat":"recovery","name":"detect"`, `"cat":"recovery","name":"lock-recovery"`,
		`"cat":"recovery","name":"log-scan"`, `"cat":"recovery","name":"replay"`,
		`"cat":"recovery","name":"reopen"`, `"cat":"recovery","name":"page-repair"`,
		`"cat":"recovery","name":"recovered"`,
	} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing recovery event %s", want)
		}
	}
	// A span name outside the vocabulary must be a schema violation.
	bad := filepath.Join(t.TempDir(), "badrec.jsonl")
	line := `{"ph":"X","ts":1,"dur":5,"name":"undo","cat":"recovery","track":"failover"}`
	if err := os.WriteFile(bad, []byte(line+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The line is schema-valid apart from its name, so the single
	// violation is the vocabulary check.
	if err := run([]string{"-validate", bad}); err == nil || !strings.Contains(err.Error(), "1 schema violation(s)") {
		t.Fatalf("validator accepted an unknown recovery span: %v", err)
	}
}

// TestValidateControllerTrace runs a small adaptive simulation and
// checks that the controller's trace output (throttle/probe/reroute
// instants, MPL counters, all on the "control" track) conforms to the
// trace_event schema the validator enforces.
func TestValidateControllerTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "adaptive.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.AdaptiveConfig(core.CouplingGEM, true, core.AdaptiveOptions{
		Warmup:  time.Second,
		Measure: 6 * time.Second,
	})
	cfg.Tracing = &core.TraceConfig{Events: f}
	if _, err := core.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-validate", path}); err != nil {
		t.Fatalf("controller trace failed schema validation: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trace := string(data)
	if !strings.Contains(trace, `"track":"control"`) {
		t.Error("trace has no events on the control track")
	}
	actions := 0
	for _, name := range []string{`"name":"throttle"`, `"name":"probe"`, `"name":"reroute"`} {
		if strings.Contains(trace, name) {
			actions++
		}
	}
	if actions == 0 {
		t.Error("trace records no controller actions (throttle/probe/reroute)")
	}
	if !strings.Contains(trace, `"name":"mpl`) && !strings.Contains(trace, `"name":"overrides"`) {
		t.Error("trace records no controller counters")
	}
}
