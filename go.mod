module gemsim

go 1.22
